"""Node-splitting algorithms (paper Sections 3.2 and 3.3).

Three pieces:

- :func:`choose_data_split` — data-node splits: EDA-optimal dimension choice
  (maximum live extent; Section 3.2 proves optimality independent of query
  size and data distribution), split position as close to the middle as the
  utilization constraint allows, always *clean* (``lsp == rsp``).
- :func:`bipartition_intervals` — the 1-d interval bipartitioning that plays
  the role of R-tree bipartitioning for index-node splits: alternately drain
  the by-left-boundary and by-right-boundary sorted lists until utilization
  is met, then place the rest by least elongation.  ``O(n log n)``.
- :func:`choose_index_split` — index-node splits: run the bipartition along
  every candidate dimension, then pick the dimension minimizing the EDA
  increase ``(w_j + r) / (s_j + r)`` (Section 3.3); overlap ``w_j > 0`` is
  accepted exactly when a clean split would violate utilization.

Split choosers accept ``policy="eda"`` (the paper's algorithm),
``policy="vam"`` (the VAMSplit baseline of Figure 5(a,b): maximum-variance
dimension, median position) or ``policy="rr"`` (round-robin dimension choice,
the LSDh-tree's strategy [Henrich 1998], kept to demonstrate why Lemma 1's
implicit dimensionality reduction needs an *informed* dimension choice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect

POLICY_EDA = "eda"
POLICY_VAM = "vam"
POLICY_RR = "rr"
_POLICIES = (POLICY_EDA, POLICY_VAM, POLICY_RR)

_rr_counters: dict[int, int] = {}


def _round_robin_order(dims: int) -> np.ndarray:
    """Cycle through dimensions across calls (per-dimensionality counter)."""
    start = _rr_counters.get(dims, 0)
    _rr_counters[dims] = (start + 1) % dims
    return np.arange(start, start + dims) % dims


def reset_round_robin() -> None:
    """Restart the round-robin cycling (for reproducible ``rr`` builds)."""
    _rr_counters.clear()

POSITION_MIDDLE = "middle"
POSITION_MEDIAN = "median"
_POSITIONS = (POSITION_MIDDLE, POSITION_MEDIAN)


@dataclass(frozen=True)
class DataSplit:
    """Outcome of a data-node split: clean 1-d cut at ``position``."""

    dim: int
    position: float
    left_indices: np.ndarray
    right_indices: np.ndarray


@dataclass(frozen=True)
class IndexSplit:
    """Outcome of an index-node split: possibly overlapping cut.

    ``lsp >= rsp``; ``lsp - rsp`` is the overlap the EDA criterion accepted
    to preserve utilization without cascading splits.
    """

    dim: int
    lsp: float
    rsp: float
    left_ids: list[int]
    right_ids: list[int]

    @property
    def overlap(self) -> float:
        return self.lsp - self.rsp


def _validate_policy(policy: str, position_rule: str) -> None:
    if policy not in _POLICIES:
        raise ValueError(f"unknown split policy {policy!r}; expected one of {_POLICIES}")
    if position_rule not in _POSITIONS:
        raise ValueError(
            f"unknown position rule {position_rule!r}; expected one of {_POSITIONS}"
        )


# ----------------------------------------------------------------------
# Data node splitting (Section 3.2)
# ----------------------------------------------------------------------
def choose_data_split(
    points: np.ndarray,
    min_fill: float,
    policy: str = POLICY_EDA,
    position_rule: str = POSITION_MIDDLE,
) -> DataSplit:
    """Split ``points`` (the overflowing node's entries) into two halves.

    Dimension order: by decreasing live extent (``eda``) or decreasing
    variance (``vam``).  Position: the live-box middle (``middle``) or the
    median (``median``), shifted just enough to satisfy the utilization
    constraint, and always placed strictly between two distinct coordinate
    values so the cut is geometrically clean.  Dimensions where no clean cut
    satisfies utilization (heavy duplicates) are skipped; if every dimension
    fails, the split degrades to a rank split at the duplicated value (both
    halves then touch the cut plane, which remains correct because the plane
    belongs to both closed regions).
    """
    _validate_policy(policy, position_rule)
    points = np.asarray(points)
    n = points.shape[0]
    if n < 2:
        raise ValueError("cannot split fewer than 2 points")
    min_count = max(1, int(np.floor(n * min_fill)))
    if 2 * min_count > n:
        min_count = n // 2

    if policy == POLICY_EDA:
        scores = points.max(axis=0) - points.min(axis=0)  # live extents
        dim_order = np.argsort(-scores, kind="stable")
    elif policy == POLICY_VAM:
        scores = points.var(axis=0)
        dim_order = np.argsort(-scores, kind="stable")
    else:  # round-robin: uninformed cycling (LSDh-style)
        dim_order = _round_robin_order(points.shape[1])

    for dim in dim_order:
        dim = int(dim)
        values = np.sort(points[:, dim], kind="stable")
        if position_rule == POSITION_MIDDLE:
            target_pos = (values[0] + values[-1]) / 2.0
            target_k = int(np.searchsorted(values, target_pos, side="right"))
        else:
            target_k = n // 2
        split_k = _closest_clean_cut(values, target_k, min_count, n - min_count)
        if split_k is None:
            continue
        position = float(values[split_k - 1] + values[split_k]) / 2.0
        column = points[:, dim]
        left = np.flatnonzero(column <= values[split_k - 1])
        right = np.flatnonzero(column > values[split_k - 1])
        return DataSplit(dim, position, left, right)

    # Degenerate fallback: duplicates block every clean cut.  Rank-split on
    # the best-scoring dimension at the duplicated value.
    dim = int(dim_order[0])
    order = np.argsort(points[:, dim], kind="stable")
    k = n // 2
    position = float(points[order[k - 1], dim])
    return DataSplit(dim, position, order[:k], order[k:])


def _closest_clean_cut(
    values: np.ndarray, target_k: int, lo: int, hi: int
) -> int | None:
    """Smallest |k - target_k| with ``lo <= k <= hi`` and a strict value gap
    ``values[k-1] < values[k]`` (so a clean cut can pass between them)."""
    target_k = int(np.clip(target_k, lo, hi))
    n = len(values)
    for delta in range(0, max(target_k - lo, hi - target_k) + 1):
        for k in (target_k - delta, target_k + delta):
            if lo <= k <= hi and 0 < k < n and values[k - 1] < values[k]:
                return k
    return None


# ----------------------------------------------------------------------
# 1-d interval bipartitioning (Section 3.3, "choice of split position")
# ----------------------------------------------------------------------
def bipartition_intervals(
    intervals: np.ndarray, min_per_side: int
) -> tuple[list[int], list[int], float, float]:
    """Partition 1-d segments into two groups minimizing overlap.

    ``intervals`` is an ``(n, 2)`` array of ``(low, high)`` segments — the
    children's regions projected on the candidate split dimension.  Segments
    are drawn alternately from the leftmost-first and rightmost-first sorted
    orders into the left and right group until both reach ``min_per_side``;
    the remainder goes wherever it elongates the group boundary least.

    Returns ``(left_indices, right_indices, lsp, rsp)`` where ``lsp`` is the
    right boundary of the left group and ``rsp`` the left boundary of the
    right group.  A clean cut with a gap is snapped to the gap's midpoint so
    the two regions tile the space (``lsp >= rsp`` always holds on return).
    """
    intervals = np.asarray(intervals, dtype=np.float64)
    n = intervals.shape[0]
    if n < 2:
        raise ValueError("need at least 2 intervals to bipartition")
    if min_per_side < 1 or 2 * min_per_side > n:
        raise ValueError(f"min_per_side {min_per_side} infeasible for {n} intervals")

    by_left = sorted(range(n), key=lambda i: (intervals[i, 0], intervals[i, 1]))
    by_right = sorted(range(n), key=lambda i: (-intervals[i, 1], -intervals[i, 0]))
    assigned = np.full(n, -1, dtype=np.int8)  # -1 free, 0 left, 1 right
    left: list[int] = []
    right: list[int] = []
    li = ri = 0
    while len(left) < min_per_side or len(right) < min_per_side:
        if len(left) < min_per_side:
            while assigned[by_left[li]] != -1:
                li += 1
            assigned[by_left[li]] = 0
            left.append(by_left[li])
        if len(right) < min_per_side:
            while assigned[by_right[ri]] != -1:
                ri += 1
            assigned[by_right[ri]] = 1
            right.append(by_right[ri])

    lsp = max(intervals[i, 1] for i in left)
    rsp = min(intervals[i, 0] for i in right)
    for i in by_left:
        if assigned[i] != -1:
            continue
        lo, hi = intervals[i]
        elong_left = max(0.0, hi - lsp)
        elong_right = max(0.0, rsp - lo)
        go_left = elong_left < elong_right or (
            elong_left == elong_right and len(left) <= len(right)
        )
        if go_left:
            left.append(i)
            lsp = max(lsp, hi)
        else:
            right.append(i)
            rsp = min(rsp, lo)

    if lsp < rsp:  # clean split with a gap: snap to midpoint so regions tile
        lsp = rsp = (lsp + rsp) / 2.0
    return left, right, float(lsp), float(rsp)


# ----------------------------------------------------------------------
# Index node splitting (Section 3.3)
# ----------------------------------------------------------------------
def choose_index_split(
    children: list[tuple[int, Rect]],
    min_fill: float,
    query_side: float,
    policy: str = POLICY_EDA,
) -> IndexSplit:
    """Split an overflowing index node's children into two groups.

    For every dimension the best bipartition is computed first; the split
    dimension is then the one minimizing ``(w_j + r) / (s_j + r)`` (``eda``)
    or simply the maximum-variance-of-centres dimension (``vam``).  ``s_j``
    is the extent of the hull of the children's regions, so dimensions never
    used for splits below (``w_j == s_j``) cost 1.0 and are implicitly
    eliminated (Lemma 1).
    """
    _validate_policy(policy, POSITION_MIDDLE)
    n = len(children)
    if n < 2:
        raise ValueError("need at least 2 children to split an index node")
    min_per_side = max(1, int(np.floor(n * min_fill)))
    if 2 * min_per_side > n:
        min_per_side = n // 2

    lows = np.array([rect.low for _, rect in children])
    highs = np.array([rect.high for _, rect in children])
    dims = lows.shape[1]
    hull_extent = highs.max(axis=0) - lows.min(axis=0)

    if policy == POLICY_VAM:
        centers = (lows + highs) / 2.0
        candidate_dims: list[int] = [int(np.argmax(centers.var(axis=0)))]
    elif policy == POLICY_RR:
        candidate_dims = [int(_round_robin_order(dims)[0])]
    else:
        candidate_dims = list(range(dims))

    best: IndexSplit | None = None
    best_cost = np.inf
    for dim in candidate_dims:
        intervals = np.stack([lows[:, dim], highs[:, dim]], axis=1)
        left, right, lsp, rsp = bipartition_intervals(intervals, min_per_side)
        overlap = max(0.0, lsp - rsp)
        denom = hull_extent[dim] + query_side
        cost = (overlap + query_side) / denom if denom > 0 else np.inf
        if cost < best_cost:
            best_cost = cost
            best = IndexSplit(
                dim,
                lsp,
                rsp,
                [children[i][0] for i in left],
                [children[i][0] for i in right],
            )
    assert best is not None
    return best
