"""Plain-text table rendering for benchmark output."""

from __future__ import annotations


def render_table(rows: list[dict], title: str = "") -> str:
    """Render dict rows as an aligned text table (insertion-ordered keys)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "-" * len(header)
    lines = [title, rule, header, rule] if title else [header, rule]
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    lines.append(rule)
    return "\n".join(lines)
