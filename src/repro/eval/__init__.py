"""Evaluation harness reproducing the paper's Section 4 methodology.

- :mod:`repro.eval.costs` — normalized I/O and CPU costs (linear scan = 0.1
  and 1.0 respectively).
- :mod:`repro.eval.harness` — index factory + per-workload measurement loop.
- :mod:`repro.eval.figures` — one driver per figure of the paper; each
  returns the rows (dicts) the corresponding plot was drawn from.
- :mod:`repro.eval.tables` — Table 1 / Table 2 drivers.
- :mod:`repro.eval.report` — plain-text table rendering for the benchmarks.
"""

from repro.eval.costs import normalized_cpu_cost, normalized_io_cost
from repro.eval.harness import (
    INDEX_KINDS,
    ExperimentResult,
    build_index,
    run_workload,
    run_workload_batched,
    run_workload_parallel,
)
from repro.eval.report import render_table

__all__ = [
    "ExperimentResult",
    "INDEX_KINDS",
    "build_index",
    "normalized_cpu_cost",
    "normalized_io_cost",
    "render_table",
    "run_workload",
    "run_workload_batched",
    "run_workload_parallel",
]
