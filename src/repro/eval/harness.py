"""Experiment driver: build indexes, run workloads, measure both costs.

``build_index`` is the single factory the figure drivers and benchmarks use;
``run_workload`` executes a :class:`~repro.datasets.workload.QueryWorkload`
against one index, charging I/O through the shared accountant and timing CPU
with ``perf_counter``, and reports both raw and scan-normalized costs.

Indexes are built by repeated insertion by default — the construction the
paper timed; the hybrid tree additionally supports ``build="bulk"`` for
quick interactive use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    HBTree,
    KDBTree,
    MTree,
    RTree,
    SRTree,
    SSTree,
    SequentialScan,
    VAFile,
    XTree,
)
from repro.core import POLICY_VAM, HybridTree
from repro.core.splits import POLICY_RR
from repro.datasets.workload import QueryWorkload
from repro.eval.costs import normalized_cpu_cost
from repro.storage.page import sequential_scan_pages

INDEX_KINDS = (
    "hybrid",
    "hybrid-vam",
    "hybrid-rr",
    "hbtree",
    "srtree",
    "sstree",
    "rtree",
    "kdbtree",
    "xtree",
    "mtree",
    "vafile",
    "scan",
)


def build_index(
    kind: str,
    data: np.ndarray,
    build: str = "dynamic",
    **params,
):
    """Construct and populate an index of the given ``kind``.

    ``params`` are forwarded to the index constructor (e.g. ``els_bits``,
    ``expected_query_side``, ``min_fill``, ``page_size``).
    """
    data = np.asarray(data, dtype=np.float32)
    dims = data.shape[1]
    if kind == "scan":
        return SequentialScan.from_points(data, **params)
    if kind.startswith("hybrid"):
        if kind == "hybrid-vam":
            params = {**params, "split_policy": POLICY_VAM, "split_position": "median"}
        elif kind == "hybrid-rr":
            params = {**params, "split_policy": POLICY_RR}
        elif kind != "hybrid":
            raise ValueError(f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}")
        if build == "bulk":
            return HybridTree.bulk_load(data, **params)
        tree = HybridTree(dims, **params)
        for oid, vector in enumerate(data):
            tree.insert(vector, oid)
        return tree
    classes = {
        "hbtree": HBTree,
        "srtree": SRTree,
        "sstree": SSTree,
        "rtree": RTree,
        "kdbtree": KDBTree,
        "xtree": XTree,
        "mtree": MTree,
        "vafile": VAFile,
    }
    if kind not in classes:
        raise ValueError(f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}")
    return classes[kind].from_points(data, **params)


@dataclass
class ExperimentResult:
    """Averaged costs of one (index, workload) pair."""

    kind: str
    num_queries: int
    avg_disk_accesses: float
    avg_cpu_seconds: float
    avg_result_count: float
    scan_pages: int
    scan_cpu_seconds: float

    @property
    def normalized_io(self) -> float:
        return self.avg_disk_accesses / self.scan_pages if self.scan_pages else 0.0

    @property
    def normalized_cpu(self) -> float:
        return normalized_cpu_cost(self.avg_cpu_seconds, self.scan_cpu_seconds)

    def row(self, **extra) -> dict:
        """A flat dict for table rendering, with caller-supplied key columns."""
        return {
            **extra,
            "method": self.kind,
            "io/query": round(self.avg_disk_accesses, 1),
            "norm_io": round(self.normalized_io, 4),
            "cpu_ms": round(self.avg_cpu_seconds * 1e3, 3),
            "norm_cpu": round(self.normalized_cpu, 4),
            "results": round(self.avg_result_count, 1),
        }


def _scan_cpu_per_query(data: np.ndarray, workload: QueryWorkload) -> float:
    """CPU denominator: time an actual linear scan over this data/workload."""
    scan = SequentialScan.from_points(data)
    queries = min(len(workload), 8) or 1
    start = time.perf_counter()
    if workload.kind == "box":
        for box in workload.boxes()[:queries]:
            scan.range_search(box)
    else:
        for center, radius in list(zip(workload.centers, workload.radii))[:queries]:
            scan.distance_range(center, float(radius), workload.metric)
    return (time.perf_counter() - start) / queries


def run_workload(
    index,
    data: np.ndarray,
    workload: QueryWorkload,
    kind: str = "",
    scan_cpu_seconds: float | None = None,
) -> ExperimentResult:
    """Execute every query of ``workload`` against ``index`` cold.

    I/O is measured through the index's accountant (checkpoint per query);
    CPU is wall-clock ``perf_counter`` over the whole batch, matching the
    paper's "average CPU time per query".
    """
    kind = kind or type(index).__name__
    scan_pages = sequential_scan_pages(len(index), data.shape[1])
    if scan_cpu_seconds is None:
        scan_cpu_seconds = _scan_cpu_per_query(data, workload)

    total_weighted = 0.0
    total_results = 0
    start = time.perf_counter()
    if workload.kind == "box":
        for box in workload.boxes():
            index.io.checkpoint()
            total_results += len(index.range_search(box))
            total_weighted += index.io.since_checkpoint().weighted_cost()
    elif workload.kind == "distance":
        for center, radius in zip(workload.centers, workload.radii):
            index.io.checkpoint()
            total_results += len(index.distance_range(center, float(radius), workload.metric))
            total_weighted += index.io.since_checkpoint().weighted_cost()
    else:
        raise ValueError(f"unknown workload kind {workload.kind!r}")
    elapsed = time.perf_counter() - start

    n = len(workload)
    return ExperimentResult(
        kind=kind,
        num_queries=n,
        avg_disk_accesses=total_weighted / n,
        avg_cpu_seconds=elapsed / n,
        avg_result_count=total_results / n,
        scan_pages=scan_pages,
        scan_cpu_seconds=scan_cpu_seconds,
    )


def run_workload_batched(
    index,
    data: np.ndarray,
    workload: QueryWorkload,
    kind: str = "",
    scan_cpu_seconds: float | None = None,
):
    """Execute the whole workload through the batch-query API in one pass.

    The index must expose the batch interface (``range_search_many`` /
    ``distance_range_many``): the hybrid tree serves it with the
    shared-traversal engine, baselines through
    :class:`repro.baselines.common.BatchQueryMixin`.  Returns an
    :class:`ExperimentResult` (averages, comparable with
    :func:`run_workload`) together with the per-query
    :class:`repro.engine.metrics.BatchMetrics`.
    """
    kind = kind or type(index).__name__
    scan_pages = sequential_scan_pages(len(index), data.shape[1])
    if scan_cpu_seconds is None:
        scan_cpu_seconds = _scan_cpu_per_query(data, workload)

    index.io.checkpoint()
    start = time.perf_counter()
    if workload.kind == "box":
        results, metrics = index.range_search_many(
            workload.boxes(), return_metrics=True
        )
    elif workload.kind == "distance":
        results, metrics = index.distance_range_many(
            workload.centers, workload.radii, workload.metric, return_metrics=True
        )
    else:
        raise ValueError(f"unknown workload kind {workload.kind!r}")
    elapsed = time.perf_counter() - start
    total_weighted = index.io.since_checkpoint().weighted_cost()

    n = len(workload)
    return (
        ExperimentResult(
            kind=kind,
            num_queries=n,
            avg_disk_accesses=total_weighted / n,
            avg_cpu_seconds=elapsed / n,
            avg_result_count=sum(len(r) for r in results) / n,
            scan_pages=scan_pages,
            scan_cpu_seconds=scan_cpu_seconds,
        ),
        metrics,
    )


def run_workload_parallel(
    source,
    data: np.ndarray,
    workload: QueryWorkload,
    workers: int = 2,
    mode: str = "thread",
    mmap: bool = True,
    kind: str = "",
    scan_cpu_seconds: float | None = None,
):
    """Execute the workload through a multi-worker parallel engine.

    ``source`` is either a saved hybrid tree file (``HybridTree.save``) —
    each worker reopens it (zero-copy mmap handles by default) — or a live
    index object (hybrid tree or baseline), which thread workers query
    through read-only views.  Either way each partition runs through the
    index's batch methods, so results are bit-identical to
    :func:`run_workload_batched` on the same index.
    ``avg_disk_accesses`` sums every worker's charged reads, so it grows
    with worker count (each worker re-reads the directory for itself)
    while wall-clock CPU shrinks on multicore hosts.  Returns
    ``(ExperimentResult, BatchMetrics)`` like :func:`run_workload_batched`.
    """
    import os

    from repro.engine.parallel import ParallelQueryEngine

    if not kind:
        base = (
            "hybrid"
            if isinstance(source, (str, os.PathLike))
            else type(source).__name__.lower()
        )
        kind = f"{base}[{workers}x{mode}]"
    scan_pages = sequential_scan_pages(data.shape[0], data.shape[1])
    if scan_cpu_seconds is None:
        scan_cpu_seconds = _scan_cpu_per_query(data, workload)

    with ParallelQueryEngine(
        source, workers=workers, mode=mode, mmap=mmap
    ) as engine:
        engine.io.checkpoint()
        start = time.perf_counter()
        if workload.kind == "box":
            results, metrics = engine.range_search_many(
                workload.boxes(), return_metrics=True
            )
        elif workload.kind == "distance":
            results, metrics = engine.distance_range_many(
                workload.centers, workload.radii, workload.metric, return_metrics=True
            )
        else:
            raise ValueError(f"unknown workload kind {workload.kind!r}")
        elapsed = time.perf_counter() - start
        total_weighted = engine.io.since_checkpoint().weighted_cost()

    n = len(workload)
    return (
        ExperimentResult(
            kind=kind,
            num_queries=n,
            avg_disk_accesses=total_weighted / n,
            avg_cpu_seconds=elapsed / n,
            avg_result_count=sum(len(r) for r in results) / n,
            scan_pages=scan_pages,
            scan_cpu_seconds=scan_cpu_seconds,
        ),
        metrics,
    )
