"""Normalized cost definitions (paper Section 4).

Normalized I/O cost
    (average disk accesses per query) / (pages a linear scan reads).
    Sequential accesses are charged at one tenth of a random access, so the
    linear scan itself scores exactly 0.1; an index above 0.1 loses to the
    scan.

Normalized CPU cost
    (average CPU seconds per query) / (CPU seconds of a linear scan query).
    The scan scores 1.0 by construction.  Normalizing removes the hardware
    constant, which is what lets a 2026 reproduction compare CPU *shapes*
    against 1999 numbers.
"""

from __future__ import annotations

from repro.storage.iostats import IOStats


def normalized_io_cost(query_io: IOStats, scan_pages: int) -> float:
    """Weighted accesses of one (or an average) query over scan pages."""
    if scan_pages <= 0:
        raise ValueError("scan_pages must be positive")
    return query_io.weighted_cost() / scan_pages


def normalized_cpu_cost(query_cpu_seconds: float, scan_cpu_seconds: float) -> float:
    if scan_cpu_seconds <= 0:
        raise ValueError("scan_cpu_seconds must be positive")
    return query_cpu_seconds / scan_cpu_seconds
