"""One driver per figure of the paper's evaluation (Section 4).

Each function builds the indexes, runs the calibrated workload, and returns
the list of row dicts behind the corresponding figure, so benchmarks (and
users) can regenerate the published series at any scale.  Sizes default to
laptop-scale; the paper's full sizes are documented per function and in
EXPERIMENTS.md.

Selectivities follow the paper: 0.07% on FOURIER, 0.2% on COLHIST.
"""

from __future__ import annotations

import numpy as np

from repro.core import HybridTree, compute_stats
from repro.datasets import (
    colhist_dataset,
    distance_workload,
    fourier_dataset,
    pad_with_nondiscriminating_dims,
    range_workload,
)
from repro.distances import L1
from repro.eval.harness import build_index, run_workload

FOURIER_SELECTIVITY = 0.0007
COLHIST_SELECTIVITY = 0.002


# ----------------------------------------------------------------------
# Figure 5(a, b): EDA-optimal vs VAMSplit node splitting
# ----------------------------------------------------------------------
def fig5_eda_vs_vam(
    dims_list: tuple[int, ...] = (16, 32, 64),
    count: int = 8000,
    num_queries: int = 25,
    seed: int = 0,
) -> list[dict]:
    """Disk accesses and CPU time per query for the hybrid tree built with
    EDA-optimal splits vs the VAMSplit algorithm (paper: 64-d COLHIST,
    dimensionality sweep; EDA wins and the gap grows with dims)."""
    rows = []
    for dims in dims_list:
        data = colhist_dataset(count, dims, seed=seed)
        workload = range_workload(data, num_queries, COLHIST_SELECTIVITY, seed=seed + 1)
        for kind in ("hybrid", "hybrid-vam"):
            # Section 3.3: the index-node EDA criterion optimizes for the
            # workload's query size, which the experiment knows exactly.
            index = build_index(kind, data, expected_query_side=workload.box_side)
            result = run_workload(index, data, workload, kind=kind)
            rows.append(result.row(dims=dims))
    return rows


# ----------------------------------------------------------------------
# Figure 5(c): effect of ELS precision (bits per boundary)
# ----------------------------------------------------------------------
def fig5c_els(
    bits_list: tuple[int, ...] = (0, 2, 4, 8, 12, 16),
    dims_list: tuple[int, ...] = (16, 32, 64),
    count: int = 8000,
    num_queries: int = 25,
    seed: int = 0,
) -> list[dict]:
    """Disk accesses per query as ELS precision varies (paper: 0 bits = no
    dead-space elimination is much worse; ~4 bits captures nearly all of the
    benefit)."""
    rows = []
    for dims in dims_list:
        data = colhist_dataset(count, dims, seed=seed)
        workload = range_workload(data, num_queries, COLHIST_SELECTIVITY, seed=seed + 1)
        # ELS precision affects only query-time pruning (the table stores
        # exact live boxes and quantizes on use), so one build serves every
        # precision; the tree itself is identical across the sweep.
        index = build_index("hybrid", data, els_bits=4)
        assert isinstance(index, HybridTree)
        for bits in bits_list:
            index.els.bits = bits
            result = run_workload(index, data, workload, kind=f"hybrid/els={bits}")
            row = result.row(dims=dims, els_bits=bits)
            row["els_kb"] = round(index.els.memory_bytes / 1024.0, 1)
            rows.append(row)
        index.els.bits = 4
    return rows


# ----------------------------------------------------------------------
# Figure 6: scalability with dimensionality
# ----------------------------------------------------------------------
def fig6_dimensionality(
    dataset: str,
    dims_list: tuple[int, ...] | None = None,
    count: int | None = None,
    num_queries: int = 25,
    methods: tuple[str, ...] = ("hybrid", "hbtree", "srtree", "scan"),
    seed: int = 0,
) -> list[dict]:
    """Normalized I/O and CPU vs dimensionality.

    ``dataset="fourier"`` reproduces Figure 6(a, b) (paper: 400K points,
    8/12/16 dims, 0.07% selectivity); ``dataset="colhist"`` reproduces
    Figure 6(c, d) (paper: 70K points, 16/32/64 dims, 0.2% selectivity).
    Expected shape: hybrid < hB < SR in both costs, hybrid below the 0.1
    linear-scan line, SR-tree degrading fastest with dimensionality.
    """
    if dataset == "fourier":
        dims_list = dims_list or (8, 12, 16)
        count = count or 40000
        selectivity = FOURIER_SELECTIVITY
        make = fourier_dataset
    elif dataset == "colhist":
        dims_list = dims_list or (16, 32, 64)
        count = count or 12000
        selectivity = COLHIST_SELECTIVITY
        make = colhist_dataset
    else:
        raise ValueError("dataset must be 'fourier' or 'colhist'")
    rows = []
    for dims in dims_list:
        data = make(count, dims, seed=seed)
        workload = range_workload(data, num_queries, selectivity, seed=seed + 1)
        for kind in methods:
            index = build_index(kind, data)
            result = run_workload(index, data, workload, kind=kind)
            rows.append(result.row(dataset=dataset, dims=dims))
    return rows


# ----------------------------------------------------------------------
# Figure 7(a, b): scalability with database size
# ----------------------------------------------------------------------
def fig7_dbsize(
    sizes: tuple[int, ...] = (4000, 8000, 12000, 16000),
    dims: int = 64,
    num_queries: int = 25,
    methods: tuple[str, ...] = ("hybrid", "hbtree", "srtree", "scan"),
    seed: int = 0,
) -> list[dict]:
    """Normalized costs vs database size on 64-d COLHIST (paper: 25K-70K
    tuples).  Expected shape: the hybrid tree's normalized cost *decreases*
    with size — sublinear growth of the actual cost."""
    rows = []
    for size in sizes:
        data = colhist_dataset(size, dims, seed=seed)
        workload = range_workload(data, num_queries, COLHIST_SELECTIVITY, seed=seed + 1)
        for kind in methods:
            index = build_index(kind, data)
            result = run_workload(index, data, workload, kind=kind)
            rows.append(result.row(size=size, dims=dims))
    return rows


# ----------------------------------------------------------------------
# Figure 7(c, d): distance-based queries (L1 / Manhattan)
# ----------------------------------------------------------------------
def fig7_distance(
    dims_list: tuple[int, ...] = (16, 32, 64),
    count: int = 12000,
    num_queries: int = 20,
    methods: tuple[str, ...] = ("hybrid", "srtree", "scan"),
    seed: int = 0,
) -> list[dict]:
    """Normalized costs for L1 distance range queries on COLHIST (paper:
    hybrid vs SR-tree; hB-tree omitted because it "does not support
    distance-based search", footnote 2).  Expected: the hybrid tree wins by
    a wide margin."""
    rows = []
    for dims in dims_list:
        data = colhist_dataset(count, dims, seed=seed)
        workload = distance_workload(
            data, num_queries, COLHIST_SELECTIVITY, metric=L1, seed=seed + 1
        )
        for kind in methods:
            index = build_index(kind, data)
            result = run_workload(index, data, workload, kind=kind)
            rows.append(result.row(dims=dims, metric="L1"))
    return rows


# ----------------------------------------------------------------------
# Section 3.2/3.3 ablations and Lemma 1
# ----------------------------------------------------------------------
def ablation_split_position(
    dims: int = 64,
    count: int = 8000,
    num_queries: int = 25,
    seed: int = 0,
) -> list[dict]:
    """Middle vs median split position (Section 3.2 argues middle yields
    more cubic regions, hence fewer accesses)."""
    data = colhist_dataset(count, dims, seed=seed)
    workload = range_workload(data, num_queries, COLHIST_SELECTIVITY, seed=seed + 1)
    rows = []
    for position in ("middle", "median"):
        index = build_index("hybrid", data, split_position=position)
        result = run_workload(index, data, workload, kind=f"hybrid/{position}")
        rows.append(result.row(dims=dims, position=position))
    return rows


def ablation_split_dimension(
    dims: int = 64,
    count: int = 8000,
    num_queries: int = 25,
    seed: int = 0,
) -> list[dict]:
    """Max-extent (EDA) vs max-variance (VAM) split-dimension choice with
    the split position held at the middle rule, isolating the dimension
    criterion (Section 3.2's comparison)."""
    data = colhist_dataset(count, dims, seed=seed)
    workload = range_workload(data, num_queries, COLHIST_SELECTIVITY, seed=seed + 1)
    rows = []
    for kind, policy in (("hybrid", "eda"), ("hybrid-maxvar", "vam")):
        index = build_index(
            "hybrid", data, split_policy=policy, split_position="middle"
        )
        result = run_workload(index, data, workload, kind=kind)
        rows.append(result.row(dims=dims, dimension_rule=policy))
    return rows


def lemma1_dimension_elimination(
    base_dims: int = 16,
    extra_dims_list: tuple[int, ...] = (0, 8, 16, 32, 48),
    count: int = 8000,
    num_queries: int = 25,
    seed: int = 0,
) -> list[dict]:
    """Implicit dimensionality reduction (Lemma 1): pad COLHIST with
    non-discriminating dimensions; the hybrid tree should never split on
    them and query cost should stay nearly flat."""
    base = colhist_dataset(count, base_dims, seed=seed)
    rows = []
    for extra in extra_dims_list:
        data = pad_with_nondiscriminating_dims(base, extra, seed=seed + 2)
        workload = range_workload(data, num_queries, COLHIST_SELECTIVITY, seed=seed + 1)
        index = build_index("hybrid", data)
        assert isinstance(index, HybridTree)
        stats = compute_stats(index)
        result = run_workload(index, data, workload, kind="hybrid")
        padded_used = len([d for d in stats.split_dims_used if d >= base_dims])
        row = result.row(total_dims=base_dims + extra, padded_dims=extra)
        row["split_dims_used"] = len(stats.split_dims_used)
        row["padded_dims_used"] = padded_used
        rows.append(row)
    return rows


def ext_approximate_knn(
    dims: int = 64,
    count: int = 12000,
    num_queries: int = 20,
    k: int = 10,
    factors: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0),
    seed: int = 0,
) -> list[dict]:
    """Future-work extension (paper Section 5): approximate k-NN.

    Sweeps the approximation factor and reports I/O saved vs recall against
    the exact answer and the mean distance-error ratio."""
    data = colhist_dataset(count, dims, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = data[rng.choice(count, size=num_queries, replace=False)].astype(np.float64)
    tree = build_index("hybrid", data, build="bulk")
    assert isinstance(tree, HybridTree)
    exact: list[list[tuple[int, float]]] = []
    tree.io.reset()
    for q in queries:
        exact.append(tree.knn(q, k, metric=L1))
    exact_io = tree.io.random_reads / num_queries
    rows = []
    for factor in factors:
        tree.io.reset()
        recall = 0.0
        error = 0.0
        for q, truth in zip(queries, exact):
            approx = tree.knn(q, k, metric=L1, approximation_factor=factor)
            truth_ids = {oid for oid, _ in truth}
            recall += len(truth_ids & {oid for oid, _ in approx}) / k
            worst_true = truth[-1][1]
            worst_approx = approx[-1][1]
            error += (worst_approx / worst_true) if worst_true > 0 else 1.0
        rows.append(
            {
                "factor": factor,
                "io/query": round(tree.io.random_reads / num_queries, 1),
                "io_vs_exact": round(tree.io.random_reads / num_queries / exact_io, 3),
                "recall": round(recall / num_queries, 3),
                "kth_dist_ratio": round(error / num_queries, 4),
            }
        )
    return rows
