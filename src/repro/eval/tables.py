"""Drivers for the paper's Table 1 and Table 2.

Both tables are *structural* claims; rather than restating them, these
drivers build real trees and measure the claimed properties, so the tables
are regenerated from evidence.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import HBTree, KDBTree, RTree, SRTree
from repro.core import HybridTree, compute_stats
from repro.datasets import colhist_dataset
from repro.storage.page import kdtree_node_capacity, rtree_node_capacity


def table1_splitting_strategies(
    dims_list: tuple[int, ...] = (16, 32, 64),
    count: int = 6000,
    seed: int = 0,
) -> list[dict]:
    """Table 1 measured: split arity, fanout, overlap, utilisation guarantee
    and redundancy per index structure, across dimensionalities.

    Paper's claims being checked:
      KDB-tree  — 1-d splits, fanout independent of k, no overlap, *no*
                  utilisation guarantee, no redundancy;
      hB-tree   — up to d dims per split, fanout independent of k, no
                  overlap, guaranteed utilisation, redundancy present;
      R-tree    — k-d splits, fanout ~ 1/k, high overlap, guaranteed
                  utilisation, no redundancy;
      Hybrid    — 1-d splits, fanout independent of k, low overlap,
                  guaranteed utilisation, no redundancy.
    """
    rows = []
    for dims in dims_list:
        data = colhist_dataset(count, dims, seed=seed)

        hybrid = HybridTree(dims)
        for oid, v in enumerate(data):
            hybrid.insert(v, oid)
        hstats = compute_stats(hybrid)
        rows.append(
            {
                "dims": dims,
                "index": "hybrid",
                "split_dims": 1,
                "fanout_cap": kdtree_node_capacity(dims),
                "avg_fanout": round(hstats.avg_index_fanout, 1),
                "overlap_frac": round(hstats.overlap_fraction, 4),
                "min_leaf_fill": round(hstats.min_data_utilization, 3),
                "redundancy": 1.0,
            }
        )

        kdb = KDBTree.from_points(data)
        fills = kdb.utilization_profile()
        rows.append(
            {
                "dims": dims,
                "index": "kdb",
                "split_dims": 1,
                "fanout_cap": kdtree_node_capacity(dims),
                "avg_fanout": "",
                "overlap_frac": 0.0,
                "min_leaf_fill": round(min(fills), 3),
                "redundancy": 1.0,
            }
        )

        hb = HBTree.from_points(data)
        hb_fills = hb.utilization_profile()
        rows.append(
            {
                "dims": dims,
                "index": "hb",
                "split_dims": f"<= {dims}",
                "fanout_cap": kdtree_node_capacity(dims),
                "avg_fanout": "",
                "overlap_frac": 0.0,
                "min_leaf_fill": round(min(hb_fills), 3),
                "redundancy": round(hb.redundancy_ratio(), 3),
            }
        )

        rtree = RTree.from_points(data)
        overlap = _rtree_overlap_fraction(rtree)
        rows.append(
            {
                "dims": dims,
                "index": "rtree",
                "split_dims": dims,
                "fanout_cap": rtree_node_capacity(dims),
                "avg_fanout": "",
                "overlap_frac": round(overlap, 4),
                "min_leaf_fill": round(_rtree_min_leaf_fill(rtree), 3),
                "redundancy": 1.0,
            }
        )
    return rows


def _rtree_overlap_fraction(tree: RTree) -> float:
    """Fraction of sibling-pair bounding boxes that overlap, measured over
    all index nodes (the R-tree's 'high degree of overlap')."""
    from repro.baselines.rtree import RIndexNode

    pairs = 0
    overlapping = 0

    def visit(node_id: int) -> None:
        nonlocal pairs, overlapping
        node = tree.nm.get(node_id, charge=False)
        if not isinstance(node, RIndexNode):
            return
        rects = [r for _, r in node.entries]
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                pairs += 1
                if rects[i].overlap_volume(rects[j]) > 0:
                    overlapping += 1
        for child_id, _ in node.entries:
            visit(child_id)

    visit(tree.root_id)
    return overlapping / pairs if pairs else 0.0


def _rtree_min_leaf_fill(tree: RTree) -> float:
    from repro.baselines.common import EntryLeaf

    fills: list[float] = []

    def visit(node_id: int) -> None:
        node = tree.nm.get(node_id, charge=False)
        if isinstance(node, EntryLeaf):
            fills.append(node.count / node.capacity)
            return
        for child_id, _ in node.entries:
            visit(child_id)

    visit(tree.root_id)
    return min(fills) if fills else 0.0


def table2_representation_properties(dims: int = 32, count: int = 4000, seed: int = 0) -> list[dict]:
    """Table 2 measured: representation of space partitioning, disjointness,
    split arity and dead-space elimination, for BR-based (SR-tree), kd-based
    (hB/KDB) and hybrid structures."""
    data = colhist_dataset(count, dims, seed=seed)

    hybrid = HybridTree(dims)
    for oid, v in enumerate(data):
        hybrid.insert(v, oid)
    hstats = compute_stats(hybrid)

    srtree = SRTree.from_points(data)
    kdb = KDBTree.from_points(data)

    rows = [
        {
            "index": "SR-tree (BR-based)",
            "representation": "array of spheres+rects",
            "subspaces": "may overlap",
            "split_dims": dims,
            "dead_space_eliminated": "yes (tight BRs)",
            "index_fanout_cap": srtree.index_capacity,
        },
        {
            "index": "KDB-tree (kd-based)",
            "representation": "kd-tree (single position)",
            "subspaces": "strictly disjoint",
            "split_dims": 1,
            "dead_space_eliminated": "no",
            "index_fanout_cap": kdb.index_capacity,
        },
        {
            "index": "Hybrid tree",
            "representation": "kd-tree (dual positions)",
            "subspaces": f"overlap fraction {hstats.overlap_fraction:.4f}",
            "split_dims": 1,
            "dead_space_eliminated": f"yes (ELS, {hybrid.els.bits} bits)",
            "index_fanout_cap": hybrid.index_capacity,
        },
    ]
    # Evidence: data-level regions of the hybrid tree stay disjoint.
    rows.append(
        {
            "index": "hybrid data-level overlap volume",
            "representation": f"{hstats.data_level_overlap_volume:.3e}",
            "subspaces": "",
            "split_dims": "",
            "dead_space_eliminated": "",
            "index_fanout_cap": "",
        }
    )
    assert np.isfinite(hstats.data_level_overlap_volume)
    return rows
