"""repro — a reproduction of "The Hybrid Tree: An Index Structure for High
Dimensional Feature Spaces" (Kaushik Chakrabarti & Sharad Mehrotra,
ICDE 1999).

Quick start::

    import numpy as np
    from repro import HybridTree, Rect, L1

    rng = np.random.default_rng(0)
    data = rng.random((10_000, 16), dtype=np.float32)
    tree = HybridTree.bulk_load(data)

    hits = tree.range_search(Rect([0.4] * 16, [0.6] * 16))   # box query
    near = tree.knn(data[0], k=10, metric=L1)                # arbitrary metric

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.core import HybridTree, TreeStats, compute_stats
from repro.distances import (
    L1,
    L2,
    LINF,
    LpMetric,
    Metric,
    QuadraticFormMetric,
    UserMetric,
    WeightedEuclidean,
)
from repro.engine import BatchMetrics, QuerySession
from repro.geometry import Rect, Sphere
from repro.resilience import (
    AdmissionError,
    CancelToken,
    Deadline,
    PartialResult,
    QueryAdmissionController,
    QueryCancelledError,
    QueryTimeoutError,
    WorkerCrashError,
)
from repro.storage import IOStats

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "BatchMetrics",
    "CancelToken",
    "Deadline",
    "HybridTree",
    "IOStats",
    "PartialResult",
    "QueryAdmissionController",
    "QueryCancelledError",
    "QuerySession",
    "QueryTimeoutError",
    "WorkerCrashError",
    "L1",
    "L2",
    "LINF",
    "LpMetric",
    "Metric",
    "QuadraticFormMetric",
    "Rect",
    "Sphere",
    "TreeStats",
    "UserMetric",
    "WeightedEuclidean",
    "compute_stats",
    "__version__",
]
