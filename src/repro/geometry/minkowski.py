"""Minkowski-sum overlap probabilities (paper Section 3.2, Figure 2).

For a bounding-box range query ``Q`` of side ``r`` whose centre is uniformly
distributed over the normalized data space, the probability that ``Q``
intersects a region with extents ``s_1 .. s_k`` is the volume of the region's
Minkowski sum with the query cube: ``prod_i (s_i + r)`` [Berchtold, Boehm,
Keim, Kriegel, PODS 1997].  This quantity drives every split decision in the
hybrid tree.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect


def minkowski_overlap_probability(
    extents: np.ndarray, query_side: float, clip_to_unit_space: bool = False
) -> float:
    """Probability that a uniformly-placed cube query of side ``query_side``
    overlaps a box with the given ``extents``.

    The paper's analysis (and therefore the default here) uses the unclipped
    product form, which slightly overestimates near the space boundary; with
    ``clip_to_unit_space=True`` each factor is capped at 1 so the result stays
    a probability.
    """
    extents = np.asarray(extents, dtype=np.float64)
    if query_side < 0:
        raise ValueError("query_side must be non-negative")
    factors = extents + query_side
    if clip_to_unit_space:
        factors = np.minimum(factors, 1.0)
    return float(np.prod(factors))


def minkowski_sum_rect(rect: Rect, query_side: float) -> Rect:
    """The region of query *centres* whose cube query intersects ``rect``."""
    half = query_side / 2.0
    return Rect(rect.low - half, rect.high + half)
