"""Geometry substrate: rectangles, spheres, Minkowski sums, the EDA model.

Everything in the hybrid tree's split analysis (paper Sections 3.2-3.3) is
expressed over axis-aligned bounding rectangles and their Minkowski sums with
the query cube; the DP baselines additionally use bounding spheres.
"""

from repro.geometry.eda import (
    data_split_eda_increase,
    index_split_eda_increase,
    index_split_eda_increase_integrated,
)
from repro.geometry.minkowski import minkowski_overlap_probability
from repro.geometry.rect import Rect
from repro.geometry.sphere import Sphere

__all__ = [
    "Rect",
    "Sphere",
    "data_split_eda_increase",
    "index_split_eda_increase",
    "index_split_eda_increase_integrated",
    "minkowski_overlap_probability",
]
