"""Bounding spheres for the SS-tree and SR-tree baselines.

The SS-tree bounds each subtree by a sphere around the centroid of the points
beneath it; the SR-tree keeps both that sphere and the bounding rectangle and
prunes with the *intersection* of the two regions (Katayama & Satoh 1997).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect


class Sphere:
    """A closed ball ``{x : ||x - center||_2 <= radius}``."""

    __slots__ = ("center", "radius")

    def __init__(self, center: np.ndarray, radius: float):
        self.center = np.asarray(center, dtype=np.float64)
        if self.center.ndim != 1:
            raise ValueError("center must be a 1-d array")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.radius = float(radius)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Sphere":
        """Centroid sphere: centre = mean, radius = max distance to a point.

        This is the SS-tree construction (not the minimal enclosing ball,
        which the original papers also avoid for cost reasons).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("from_points requires a non-empty (n, k) array")
        center = points.mean(axis=0)
        radius = float(np.sqrt(((points - center) ** 2).sum(axis=1).max()))
        return cls(center, radius)

    @classmethod
    def merge_all(cls, spheres: list["Sphere"], weights: list[float] | None = None) -> "Sphere":
        """Bounding sphere of child spheres: weighted centroid of centres,
        radius covering every child ball (SS-tree parent-entry update)."""
        if not spheres:
            raise ValueError("merge_all requires at least one sphere")
        if weights is None:
            weights = [1.0] * len(spheres)
        total = float(sum(weights))
        center = sum(w * s.center for w, s in zip(weights, spheres)) / total
        radius = max(
            float(np.linalg.norm(s.center - center)) + s.radius for s in spheres
        )
        return cls(center, radius)

    @property
    def dims(self) -> int:
        return self.center.shape[0]

    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.linalg.norm(point - self.center) <= self.radius + 1e-12)

    def mindist_point(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the ball (0 if inside)."""
        point = np.asarray(point, dtype=np.float64)
        return max(0.0, float(np.linalg.norm(point - self.center)) - self.radius)

    def intersects_rect(self, rect: Rect) -> bool:
        """Ball/box overlap: the box's closest point is within the radius."""
        closest = np.clip(self.center, rect.low, rect.high)
        return bool(
            float(np.linalg.norm(closest - self.center)) <= self.radius + 1e-12
        )

    def intersects_sphere(self, other: "Sphere") -> bool:
        gap = float(np.linalg.norm(self.center - other.center))
        return gap <= self.radius + other.radius + 1e-12

    def __repr__(self) -> str:
        return f"Sphere(center={self.center.tolist()}, radius={self.radius})"
