"""The EDA (expected disk accesses) split cost model (paper Sections 3.2-3.3).

Splitting a node with region extents ``s`` along dimension ``j`` turns one
region into two; a query that would have touched the node may now touch both
halves.  Under uniformly-placed cube queries of side ``r``:

- **data node** (clean split, no overlap): the increase in EDA conditioned on
  the query touching the node is ``r / (s_j + r)``.  This is minimized by the
  dimension of **maximum extent**, independently of ``r`` and of the data
  distribution — the hybrid tree's data-node rule.
- **index node** (split may leave overlap ``w_j`` along ``j``): the increase is
  ``(w_j + r) / (s_j + r)``.  The best dimension now depends on ``r``; for a
  distribution of query sizes the hybrid tree minimizes the integral
  ``∫ p(r) (w_j + r)/(s_j + r) dr``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def data_split_eda_increase(extent: float, query_side: float) -> float:
    """``r / (s + r)`` — EDA increase for a clean split along a dimension of
    extent ``s`` with query side ``r``.  Monotonically decreasing in ``s``."""
    if extent < 0:
        raise ValueError("extent must be non-negative")
    if query_side < 0:
        raise ValueError("query_side must be non-negative")
    denom = extent + query_side
    if denom == 0.0:
        return 0.0
    return query_side / denom


def index_split_eda_increase(extent: float, overlap: float, query_side: float) -> float:
    """``(w + r) / (s + r)`` — EDA increase for an index-node split with
    residual overlap ``w`` along a dimension of extent ``s``."""
    if extent < 0 or overlap < 0 or query_side < 0:
        raise ValueError("extent, overlap and query_side must be non-negative")
    denom = extent + query_side
    if denom == 0.0:
        return 0.0
    return (overlap + query_side) / denom


def index_split_eda_increase_integrated(
    extent: float,
    overlap: float,
    query_side_pdf: Callable[[np.ndarray], np.ndarray] | None = None,
    max_query_side: float = 1.0,
    samples: int = 256,
) -> float:
    """``∫_0^R p(r) (w + r)/(s + r) dr`` by trapezoidal quadrature.

    With ``query_side_pdf=None`` the query side is uniform on
    ``[0, max_query_side]`` (the paper's worked example), for which the
    integral has the closed form
    ``(1/R) [ R + (w - s) ln((s + R)/s) ]`` when ``s > 0``.
    The closed form is used in that case; tests cross-check it against the
    quadrature path.
    """
    if samples < 2:
        raise ValueError("samples must be at least 2")
    r = np.linspace(0.0, max_query_side, samples)
    if query_side_pdf is None:
        if extent > 0:
            span = max_query_side
            return float(
                (span + (overlap - extent) * np.log((extent + span) / extent)) / span
            )
        pdf = np.full_like(r, 1.0 / max_query_side)
    else:
        pdf = np.asarray(query_side_pdf(r), dtype=np.float64)
    denom = extent + r
    ratio = np.where(denom > 0, (overlap + r) / np.where(denom > 0, denom, 1.0), 0.0)
    return float(np.trapezoid(pdf * ratio, r))


def best_split_dimension_data(extents: np.ndarray) -> int:
    """Max-extent dimension: the EDA-optimal data-node split (Section 3.2)."""
    extents = np.asarray(extents, dtype=np.float64)
    return int(np.argmax(extents))


def best_split_dimension_index(
    extents: np.ndarray, overlaps: np.ndarray, query_side: float
) -> int:
    """Dimension minimizing ``(w_j + r)/(s_j + r)`` for a fixed query side.

    This is the form the paper uses in its experiments ("we use all queries of
    the same size, say r").
    """
    extents = np.asarray(extents, dtype=np.float64)
    overlaps = np.asarray(overlaps, dtype=np.float64)
    if extents.shape != overlaps.shape:
        raise ValueError("extents and overlaps must have the same shape")
    denom = extents + query_side
    cost = np.where(denom > 0, (overlaps + query_side) / np.where(denom > 0, denom, 1.0), np.inf)
    return int(np.argmin(cost))
