"""Axis-aligned bounding rectangles (the paper's "bounding regions", BRs).

``Rect`` is the workhorse of the whole repository: hybrid-tree kd-regions,
R-tree/SR-tree entries, live-space boxes, and query boxes are all ``Rect``
instances.  Coordinates are ``float64`` numpy arrays; instances are treated as
immutable (every operation returns a new ``Rect``).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


class Rect:
    """A closed axis-aligned box ``[low_i, high_i]`` in k dimensions."""

    __slots__ = ("low", "high")

    def __init__(self, low: Iterable[float], high: Iterable[float]):
        self.low = np.asarray(low, dtype=np.float64)
        self.high = np.asarray(high, dtype=np.float64)
        if self.low.shape != self.high.shape or self.low.ndim != 1:
            raise ValueError("low and high must be 1-d arrays of equal length")
        if np.any(self.low > self.high):
            raise ValueError(f"degenerate rect: low {self.low} exceeds high {self.high}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def unit(cls, dims: int) -> "Rect":
        """The normalized feature space ``[0, 1]^k`` (paper Section 3.2)."""
        return cls(np.zeros(dims), np.ones(dims))

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Rect":
        """Minimal box containing every row of ``points`` (the live-space BR)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("from_points requires a non-empty (n, k) array")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def merge_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """Minimal box containing every rect in ``rects``."""
        rects = list(rects)
        if not rects:
            raise ValueError("merge_all requires at least one rect")
        low = np.minimum.reduce([r.low for r in rects])
        high = np.maximum.reduce([r.high for r in rects])
        return cls(low, high)

    @classmethod
    def around_point(cls, center: np.ndarray, half_side: float) -> "Rect":
        """The query cube of side ``2 * half_side`` centred at ``center``."""
        center = np.asarray(center, dtype=np.float64)
        return cls(center - half_side, center + half_side)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return self.low.shape[0]

    @property
    def extents(self) -> np.ndarray:
        """Side length per dimension (the paper's ``s_j``)."""
        return self.high - self.low

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    def volume(self) -> float:
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of side lengths (proportional to surface area for boxes)."""
        return float(np.sum(self.extents))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.low) and np.all(point <= self.high))

    def contains_rect(self, other: "Rect") -> bool:
        return bool(np.all(self.low <= other.low) and np.all(self.high >= other.high))

    def intersects(self, other: "Rect") -> bool:
        """Closed-box overlap test (shared boundaries count as overlap)."""
        return bool(np.all(self.low <= other.high) and np.all(other.low <= self.high))

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect | None":
        """Geometric intersection, or ``None`` when the boxes are disjoint."""
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        if np.any(low > high):
            return None
        return Rect(low, high)

    def merge(self, other: "Rect") -> "Rect":
        """Minimal box containing both (the R-tree ``union``)."""
        return Rect(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    def merge_point(self, point: np.ndarray) -> "Rect":
        point = np.asarray(point, dtype=np.float64)
        return Rect(np.minimum(self.low, point), np.maximum(self.high, point))

    def enlargement(self, point: np.ndarray) -> float:
        """Volume increase needed to absorb ``point`` (R-tree insert criterion)."""
        return self.merge_point(point).volume() - self.volume()

    def enlargement_rect(self, other: "Rect") -> float:
        return self.merge(other).volume() - self.volume()

    def overlap_volume(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return inter.volume() if inter is not None else 0.0

    # ------------------------------------------------------------------
    # Half-space clipping (the kd-region "mapping" of paper Section 3.1)
    # ------------------------------------------------------------------
    def clip_below(self, dim: int, bound: float) -> "Rect":
        """``self ∩ { x_dim <= bound }``; bound is clamped into the box."""
        high = self.high.copy()
        high[dim] = min(high[dim], max(bound, self.low[dim]))
        return Rect(self.low, high)

    def clip_above(self, dim: int, bound: float) -> "Rect":
        """``self ∩ { x_dim >= bound }``; bound is clamped into the box."""
        low = self.low.copy()
        low[dim] = max(low[dim], min(bound, self.high[dim]))
        return Rect(low, high=self.high)

    # ------------------------------------------------------------------
    # Vectorized point filters (used by data-node scans)
    # ------------------------------------------------------------------
    def contains_points_mask(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of rows of ``points`` inside the box."""
        points = np.asarray(points)
        return np.all((points >= self.low) & (points <= self.high), axis=1)

    # ------------------------------------------------------------------
    # Batch predicates (one tree node against many queries at once — the
    # primitives of the shared-traversal engine in repro.engine)
    # ------------------------------------------------------------------
    def intersects_boxes_mask(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Closed-box overlap of this rect with each ``(lows[i], highs[i])``.

        Row ``i`` is exactly ``self.intersects(Rect(lows[i], highs[i]))``.
        """
        return np.all((lows <= self.high) & (self.low <= highs), axis=1)

    @staticmethod
    def boxes_contain_points_mask(
        lows: np.ndarray, highs: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        """``(q, m)`` mask: does query box ``i`` contain point ``j``?

        Row ``i`` is exactly ``Rect(lows[i], highs[i]).contains_points_mask
        (points)`` — the same comparisons, evaluated for every query box in
        one broadcast, which is how a data node is scanned against a whole
        batch of range queries.
        """
        points = np.asarray(points)
        return np.all(
            (points[None, :, :] >= lows[:, None, :])
            & (points[None, :, :] <= highs[:, None, :]),
            axis=2,
        )

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return np.array_equal(self.low, other.low) and np.array_equal(self.high, other.high)

    def __hash__(self) -> int:
        return hash((self.low.tobytes(), self.high.tobytes()))

    def __repr__(self) -> str:
        return f"Rect(low={self.low.tolist()}, high={self.high.tolist()})"
