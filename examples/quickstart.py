"""Quickstart: build a hybrid tree, run every query type, check the I/O bill.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import HybridTree, L1, L2, Rect, WeightedEuclidean
from repro.datasets import clustered_dataset

def main() -> None:
    # 1. A feature dataset: 20,000 points in a 16-d normalized feature
    #    space.  Real feature data is cluster-structured; so is this.
    data = clustered_dataset(20_000, dims=16, clusters=25, seed=0)

    # 2. Build the index.  bulk_load is the fast path for static data;
    #    insert() works identically for dynamic workloads.
    tree = HybridTree.bulk_load(data)
    print(f"built: {len(tree):,} points, height {tree.height}, "
          f"{tree.pages():,} 4K pages")

    # 3. Box range query (feature-based similarity with per-dimension
    #    windows) around one of the data points.
    center = data[123].astype(np.float64)
    query = Rect(np.clip(center - 0.06, 0, 1), np.clip(center + 0.06, 0, 1))
    hits = tree.range_search(query)
    print(f"box query        -> {len(hits)} results")

    # 4. Distance range query; the metric is chosen *per query*.
    near_l1 = tree.distance_range(center, radius=0.8, metric=L1)
    near_l2 = tree.distance_range(center, radius=0.25, metric=L2)
    print(f"distance queries -> {len(near_l1)} (L1), {len(near_l2)} (L2) results")

    # 5. k nearest neighbours under a user-weighted metric (relevance
    #    feedback re-weights dimensions between queries).
    weights = np.ones(16)
    weights[:4] = 5.0  # the user cares mostly about the first four features
    neighbours = tree.knn(center, k=5, metric=WeightedEuclidean(weights))
    print("5-NN (weighted) ->", [(oid, round(d, 3)) for oid, d in neighbours])

    # 6. The simulated disk keeps the I/O bill: pages touched per query.
    tree.io.reset()
    tree.range_search(query)
    print(f"that box query touched {tree.io.random_reads} of {tree.pages()} pages")

    # 7. Dynamic updates interleave freely with queries.
    tree.insert(np.full(16, 0.5, dtype=np.float32), oid=999_999)
    assert 999_999 in tree.point_search(np.full(16, 0.5))
    tree.delete(np.full(16, 0.5), oid=999_999)
    print("insert/delete ok; final size:", len(tree))

    # 8. Persist to a real page file and reopen cold.
    tree.save("/tmp/quickstart.pages")
    reopened = HybridTree.open("/tmp/quickstart.pages")
    assert set(reopened.range_search(query)) == set(hits)
    print(f"reopened from disk; cold query faulted "
          f"{reopened.io.random_reads} pages")


if __name__ == "__main__":
    main()
