"""A tour of the hybrid tree's internals: why the splits are what they are.

Walks through the Section 3.2/3.3 machinery interactively: the Minkowski
access probabilities, the EDA split criterion, what ELS precision buys, and
the structural statistics that make Table 1's claims measurable.

Run with::

    python examples/cost_model_tour.py
"""

import numpy as np

from repro import HybridTree, L1, compute_stats
from repro.core.splits import bipartition_intervals
from repro.datasets import colhist_dataset
from repro.geometry.eda import (
    data_split_eda_increase,
    index_split_eda_increase,
)
from repro.geometry.minkowski import minkowski_overlap_probability


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The Minkowski sum: who gets touched by a query.
    # ------------------------------------------------------------------
    print("1. A region with extents (0.3, 0.1) vs a cube query of side r:")
    for r in (0.01, 0.05, 0.2):
        p = minkowski_overlap_probability(np.array([0.3, 0.1]), r)
        print(f"   r={r:<5} P(touch) = (0.3+r)(0.1+r) = {p:.4f}")

    # ------------------------------------------------------------------
    # 2. The EDA split criterion: why max extent wins for data nodes.
    # ------------------------------------------------------------------
    print("\n2. Splitting a data node whose region has extents (0.4, 0.1):")
    for dim, extent in ((0, 0.4), (1, 0.1)):
        cost = data_split_eda_increase(extent, query_side=0.05)
        print(f"   split dim {dim} (s={extent}): EDA increase r/(s+r) = {cost:.3f}")
    print("   -> the larger extent always costs less, for every query size.")

    print("\n3. Index nodes may split with overlap w; the criterion becomes")
    print("   (w+r)/(s+r):")
    for w, s in ((0.0, 0.4), (0.05, 0.4), (0.4, 0.4)):
        cost = index_split_eda_increase(s, w, query_side=0.05)
        note = " (= never-split dimension: eliminated)" if w == s else ""
        print(f"   w={w:<5} s={s}: {cost:.3f}{note}")

    # ------------------------------------------------------------------
    # 4. The 1-d interval bipartition in action.
    # ------------------------------------------------------------------
    print("\n4. Bipartitioning child intervals [lo, hi] along one dimension:")
    intervals = np.array([[0.0, 0.3], [0.1, 0.4], [0.5, 0.8], [0.6, 0.9]])
    left, right, lsp, rsp = bipartition_intervals(intervals, min_per_side=2)
    print(f"   children {intervals.tolist()}")
    print(f"   -> left {sorted(left)}, right {sorted(right)}, "
          f"lsp={lsp:.2f}, rsp={rsp:.2f}, overlap={max(0.0, lsp - rsp):.2f}")

    # ------------------------------------------------------------------
    # 5. A real tree: structure statistics and the effect of ELS.
    # ------------------------------------------------------------------
    print("\n5. A 64-d color-histogram tree, measured:")
    data = colhist_dataset(10_000, 64, seed=0)
    tree = HybridTree(64, els_bits=4)
    for oid, v in enumerate(data):
        tree.insert(v, oid)
    stats = compute_stats(tree)
    print(f"   height {stats.height}, {stats.num_data_nodes} data nodes, "
          f"{stats.num_index_nodes} index nodes")
    print(f"   avg index fanout {stats.avg_index_fanout:.1f} "
          f"(capacity {tree.index_capacity}, independent of the 64 dims)")
    print(f"   avg data-page fill {stats.avg_data_utilization:.2f}, "
          f"min {stats.min_data_utilization:.2f} (the guarantee)")
    print(f"   overlapping kd splits: {stats.overlap_fraction:.2%} "
          f"(overlap only where clean splits would cascade)")
    print(f"   split dimensions used: {len(stats.split_dims_used)}/64")
    print(f"   ELS side table: {stats.els_memory_bytes / 1024:.0f} KB in memory")

    query = data[42].astype(np.float64)
    for bits in (0, 4, 16):
        tree.els.bits = bits
        tree.io.reset()
        tree.distance_range(query, 0.3, metric=L1)
        print(f"   ELS {bits:>2} bits -> {tree.io.random_reads:4d} page reads "
              f"for an L1 range query")
    tree.els.bits = 4


if __name__ == "__main__":
    main()
