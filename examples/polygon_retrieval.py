"""Shape retrieval over Fourier descriptors, with a persistent index.

The paper's FOURIER scenario: polygons are described by the first harmonics
of their boundary's Fourier transform, and similar shapes are similar
vectors.  This example builds a persistent shape index, finds look-alike
polygons, and shows the cold-start I/O of a disk-resident tree.

Run with::

    python examples/polygon_retrieval.py
"""

import os

import numpy as np

from repro import HybridTree, L2, Rect
from repro.datasets import fourier_dataset

INDEX_PATH = "/tmp/polygon_index.pages"


def build_or_open(descriptors: np.ndarray) -> HybridTree:
    """Open the persistent index if present, else build and save it."""
    if os.path.exists(INDEX_PATH):
        tree = HybridTree.open(INDEX_PATH)
        if len(tree) == len(descriptors):
            print(f"opened existing index at {INDEX_PATH}")
            return tree
    tree = HybridTree.bulk_load(descriptors)
    tree.save(INDEX_PATH)
    print(f"built and saved index at {INDEX_PATH}")
    return tree


def main() -> None:
    # 50,000 polygons from 40 shape families, 16 harmonics each.
    descriptors = fourier_dataset(50_000, dims=16, families=40, seed=7)
    tree = build_or_open(descriptors)
    print(f"{len(tree):,} polygons, height {tree.height}, {tree.pages():,} pages")

    # Pick a query polygon and find its 8 closest shapes.
    query = descriptors[31_415].astype(np.float64)
    tree.io.reset()
    matches = tree.knn(query, k=8, metric=L2)
    print(f"\n8 nearest shapes ({tree.io.random_reads} page reads):")
    for oid, dist in matches:
        marker = "  <- the query itself" if oid == 31_415 else ""
        print(f"   polygon {oid:6d}  distance {dist:.4f}{marker}")

    # Window query: shapes whose first two harmonics (size, elongation)
    # fall in a band — a feature-based filter no distance metric expresses.
    low = np.zeros(16)
    high = np.ones(16)
    low[0], high[0] = 0.45, 0.55   # medium-sized
    low[1], high[1] = 0.0, 0.2     # nearly round
    band = tree.range_search(Rect(low, high))
    print(f"\nmedium-sized, nearly-round polygons: {len(band)}")

    # Reopen cold to measure the real disk-resident behaviour.
    cold = HybridTree.open(INDEX_PATH)
    cold.knn(query, k=8, metric=L2)
    print(f"cold-start 8-NN faulted {cold.io.random_reads} pages from disk")

    os.remove(INDEX_PATH)


if __name__ == "__main__":
    main()
