"""Content-based image retrieval with relevance feedback (the MARS scenario).

The hybrid tree was built for the MARS image retrieval system (paper
Section 5): images are indexed by color histograms, a user issues a query
image, marks results as relevant, and the system *re-weights the distance
function* between iterations (MindReader-style).  Distance-based indexes are
stuck with the metric baked into their geometry; the hybrid tree, being
feature-based, accepts a different metric on every call — this example runs
the full loop.

Run with::

    python examples/image_search.py
"""

import numpy as np

from repro import HybridTree, L1, QuadraticFormMetric, WeightedEuclidean
from repro.datasets import colhist_dataset


def relevance_feedback_weights(relevant: np.ndarray) -> np.ndarray:
    """MindReader-style weights: trust dimensions the relevant set agrees on
    (inverse variance, regularised)."""
    variance = relevant.var(axis=0)
    weights = 1.0 / (variance + 1e-4)
    return weights / weights.sum() * len(weights)


def main() -> None:
    rng = np.random.default_rng(42)

    # An image collection: 30,000 synthetic Corel-like 8x8 color histograms.
    images = colhist_dataset(30_000, dims=64, themes=80, seed=1)
    tree = HybridTree.bulk_load(images)
    print(f"indexed {len(tree):,} images "
          f"({tree.pages():,} pages, height {tree.height})")

    # The "user" queries with an image from some theme.
    query_id = int(rng.integers(len(images)))
    query = images[query_id].astype(np.float64)

    # --- Iteration 1: plain L1 (histogram intersection's metric twin) -----
    tree.io.reset()
    first = tree.knn(query, k=10, metric=L1)
    print(f"\niteration 1 (L1): {tree.io.random_reads} page reads")
    for oid, dist in first[:5]:
        print(f"   image {oid:6d}  L1 distance {dist:.4f}")

    # --- Iteration 2: user marks the 5 best as relevant; re-weight --------
    relevant = images[[oid for oid, _ in first[:5]]].astype(np.float64)
    weights = relevance_feedback_weights(relevant)
    metric2 = WeightedEuclidean(weights)
    tree.io.reset()
    second = tree.knn(query, k=10, metric=metric2)
    print(f"\niteration 2 (weighted Euclidean): {tree.io.random_reads} page reads")
    for oid, dist in second[:5]:
        print(f"   image {oid:6d}  weighted distance {dist:.4f}")

    # --- Iteration 3: correlated feedback (quadratic form) ----------------
    # Histogram bins of adjacent colors co-vary; a quadratic-form metric
    # captures that.  Build a simple tri-diagonal similarity matrix.
    dims = 64
    A = np.eye(dims)
    for i in range(dims - 1):
        A[i, i + 1] = A[i + 1, i] = 0.35
    metric3 = QuadraticFormMetric(A)
    tree.io.reset()
    third = tree.knn(query, k=10, metric=metric3)
    print(f"\niteration 3 (quadratic form): {tree.io.random_reads} page reads")
    for oid, dist in third[:5]:
        print(f"   image {oid:6d}  quadratic distance {dist:.4f}")

    # The result sets drift as the metric adapts — the whole point of
    # feedback.  The index never had to be rebuilt.
    ids1 = {oid for oid, _ in first}
    ids3 = {oid for oid, _ in third}
    print(f"\noverlap between iteration 1 and 3 result sets: "
          f"{len(ids1 & ids3)}/10 images")

    # New images arrive while users search; the index is fully dynamic.
    fresh = colhist_dataset(100, dims=64, themes=80, seed=2)
    for i, hist in enumerate(fresh):
        tree.insert(hist, 1_000_000 + i)
    print(f"ingested 100 new images; index now {len(tree):,} images")


if __name__ == "__main__":
    main()
