"""Head-to-head: hybrid tree vs SR-tree, hB-tree and linear scan.

A miniature rendition of the paper's Figure 6(c): build all four access
methods over the same 64-d color-histogram collection, run an identical
0.2%-selectivity workload against each, and print the normalized costs
(linear scan = 0.1 I/O, 1.0 CPU by definition).

Run with::

    python examples/compare_indexes.py
"""

from repro.datasets import colhist_dataset, range_workload
from repro.eval import build_index, render_table, run_workload


def main() -> None:
    print("generating 12,000 64-d color histograms ...")
    data = colhist_dataset(12_000, dims=64, seed=0)
    workload = range_workload(data, num_queries=20, selectivity=0.002, seed=1)
    print(f"workload: {len(workload)} box queries, "
          f"mean side {workload.box_side:.3f}, selectivity 0.2%")

    rows = []
    for kind in ("hybrid", "hbtree", "srtree", "scan"):
        print(f"building {kind} ...")
        index = build_index(kind, data)
        result = run_workload(index, data, workload, kind=kind)
        rows.append(result.row(pages=index.pages()))

    print()
    print(render_table(rows, "64-d COLHIST, 0.2% box queries (cf. paper Fig 6c,d)"))
    print(
        "\nreading the table: norm_io < 0.1 beats a linear scan; the paper's\n"
        "result is hybrid << hB-tree < SR-tree, with the hybrid tree the\n"
        "only method comfortably below the scan line."
    )


if __name__ == "__main__":
    main()
